// Package models provides the three network families the AdaptiveFL paper
// evaluates — VGG16, ResNet18 and MobileNetV2 — built width-scalably: a
// model is constructed from a per-unit width vector, so the same
// constructor yields the full global model and every pruned submodel.
// Parameter names are stable across widths, and every pruned parameter
// tensor is a prefix block of its full-width counterpart, which is the
// invariant AdaptiveFL's dispatch and aggregation rely on.
package models

import (
	"fmt"
	"math/rand"

	"adaptivefl/internal/nn"
	"adaptivefl/internal/tensor"
)

// Arch names a supported network family.
type Arch string

// Supported architectures.
const (
	VGG16       Arch = "vgg16"
	ResNet18    Arch = "resnet18"
	MobileNetV2 Arch = "mobilenetv2"
)

// Config describes a model instantiation. WidthScale < 1 shrinks every
// base width proportionally — the whole paper pipeline runs unchanged at
// reduced scale, which is how the experiment harness fits on a CPU.
type Config struct {
	Arch       Arch
	NumClasses int
	InChannels int
	InputSize  int     // square input resolution
	WidthScale float64 // 1.0 = paper-size widths
	Seed       int64
}

// Validate fills defaults and rejects impossible configurations.
func (c *Config) Validate() error {
	if c.WidthScale == 0 {
		c.WidthScale = 1
	}
	if c.InChannels == 0 {
		c.InChannels = 3
	}
	if c.InputSize == 0 {
		c.InputSize = 32
	}
	if c.NumClasses <= 0 {
		return fmt.Errorf("models: NumClasses must be positive, got %d", c.NumClasses)
	}
	switch c.Arch {
	case VGG16:
		if c.InputSize < 32 {
			return fmt.Errorf("models: VGG16 needs InputSize >= 32, got %d", c.InputSize)
		}
	case ResNet18, MobileNetV2:
		if c.InputSize < 8 {
			return fmt.Errorf("models: %s needs InputSize >= 8, got %d", c.Arch, c.InputSize)
		}
	default:
		return fmt.Errorf("models: unknown arch %q", c.Arch)
	}
	return nil
}

// Spec describes an architecture's prunable width units for the pruning
// machinery: the full width of each unit, the minimum starting layer τ,
// and the I values used to build the model pool (ascending, so the last
// entry yields the largest submodel of a level).
type Spec struct {
	FullWidths []int
	Tau        int
	IChoices   []int
}

// Spec returns the width-unit description for the configured architecture.
func (c Config) Spec() Spec {
	cfg := c
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	switch cfg.Arch {
	case VGG16:
		return vggSpec(cfg)
	case ResNet18:
		return resnetSpec(cfg)
	case MobileNetV2:
		return mobilenetSpec(cfg)
	}
	panic("unreachable")
}

// ExitPoint marks a location where an early-exit classifier can attach
// (used by the ScaleFL baseline): the output of Layers[LayerIdx], its
// channel count and spatial size.
type ExitPoint struct {
	LayerIdx int
	Channels int
	Spatial  int
}

// Model is a constructed network: an ordered layer chain (features then
// classifier) plus the width vector it was built from. Model implements
// nn.Layer.
type Model struct {
	Cfg    Config
	Widths []int
	Layers []nn.Layer
	Exits  []ExitPoint
}

// Forward runs the full chain.
func (m *Model) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, l := range m.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward runs the chain in reverse.
func (m *Model) Backward(grad *tensor.Tensor) *tensor.Tensor {
	for i := len(m.Layers) - 1; i >= 0; i-- {
		grad = m.Layers[i].Backward(grad)
	}
	return grad
}

// Params concatenates all layer parameters.
func (m *Model) Params() []*nn.Param {
	var ps []*nn.Param
	for _, l := range m.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

var _ nn.Layer = (*Model)(nil)

// Build constructs a model with the given per-unit widths. Passing nil
// widths builds the full model (widths = Spec().FullWidths).
func Build(cfg Config, widths []int) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	spec := cfg.Spec()
	if widths == nil {
		widths = spec.FullWidths
	}
	if len(widths) != len(spec.FullWidths) {
		return nil, fmt.Errorf("models: %s expects %d width units, got %d", cfg.Arch, len(spec.FullWidths), len(widths))
	}
	for i, w := range widths {
		if w < 1 || w > spec.FullWidths[i] {
			return nil, fmt.Errorf("models: width[%d]=%d outside [1,%d]", i, w, spec.FullWidths[i])
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	switch cfg.Arch {
	case VGG16:
		return buildVGG(rng, cfg, spec, widths), nil
	case ResNet18:
		return buildResNet(rng, cfg, spec, widths), nil
	case MobileNetV2:
		return buildMobileNet(rng, cfg, spec, widths), nil
	}
	panic("unreachable")
}

// MustBuild is Build that panics on error, for tests and examples.
func MustBuild(cfg Config, widths []int) *Model {
	m, err := Build(cfg, widths)
	if err != nil {
		panic(err)
	}
	return m
}

// scaleWidth applies the global WidthScale to a base channel count,
// keeping at least one channel.
func scaleWidth(base int, scale float64) int {
	w := int(float64(base)*scale + 0.5)
	if w < 1 {
		w = 1
	}
	return w
}
