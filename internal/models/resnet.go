package models

import (
	"fmt"
	"math/rand"

	"adaptivefl/internal/nn"
	"adaptivefl/internal/tensor"
)

// resnetStageWidths are the four stage widths of ResNet18 (CIFAR stem).
var resnetStageWidths = []int{64, 128, 256, 512}

// resnetSpec exposes 4 width units — one per stage (the stem shares stage
// 1's width so identity shortcuts stay valid). Pruning boundaries fall on
// stage boundaries, where the full model already has 1×1 projection
// shortcuts, so every submodel remains a prefix slice of the full model.
// I ∈ {1,2,3} with τ = 1 plays the role Table 1's {4,6,8} plays for VGG16.
func resnetSpec(cfg Config) Spec {
	full := make([]int, len(resnetStageWidths))
	for i, w := range resnetStageWidths {
		full[i] = scaleWidth(w, cfg.WidthScale)
	}
	return Spec{FullWidths: full, Tau: 1, IChoices: []int{1, 2, 3}}
}

// basicBlock is the ResNet-18 residual block: two 3×3 conv+BN with an
// identity or 1×1-projection shortcut. Projection existence is decided by
// the *full-width* architecture, so a pruned model never introduces
// parameters the full model lacks.
type basicBlock struct {
	conv1, conv2 *nn.Conv2D
	bn1, bn2     *nn.BatchNorm2D
	relu1, relu2 *nn.ReLU
	proj         *nn.Conv2D
	projBN       *nn.BatchNorm2D

	shortcutIn *tensor.Tensor
}

func newBasicBlock(rng *rand.Rand, name string, in, out, stride int, hasProj bool) *basicBlock {
	b := &basicBlock{
		conv1: nn.NewConv2D(rng, name+".conv1", in, out, 3, stride, 1, false),
		bn1:   nn.NewBatchNorm2D(name+".bn1", out),
		relu1: nn.NewReLU(),
		conv2: nn.NewConv2D(rng, name+".conv2", out, out, 3, 1, 1, false),
		bn2:   nn.NewBatchNorm2D(name+".bn2", out),
		relu2: nn.NewReLU(),
	}
	if hasProj {
		b.proj = nn.NewConv2D(rng, name+".proj", in, out, 1, stride, 0, false)
		b.projBN = nn.NewBatchNorm2D(name+".projbn", out)
	}
	return b
}

func (b *basicBlock) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	b.shortcutIn = x
	y := b.conv1.Forward(x, train)
	y = b.bn1.Forward(y, train)
	y = b.relu1.Forward(y, train)
	y = b.conv2.Forward(y, train)
	y = b.bn2.Forward(y, train)
	var sc *tensor.Tensor
	if b.proj != nil {
		sc = b.proj.Forward(x, train)
		sc = b.projBN.Forward(sc, train)
	} else {
		sc = x
	}
	y.AddInPlace(sc)
	return b.relu2.Forward(y, train)
}

func (b *basicBlock) Backward(grad *tensor.Tensor) *tensor.Tensor {
	g := b.relu2.Backward(grad)
	// Residual branch.
	gb := b.bn2.Backward(g)
	gb = b.conv2.Backward(gb)
	gb = b.relu1.Backward(gb)
	gb = b.bn1.Backward(gb)
	dx := b.conv1.Backward(gb)
	// Shortcut branch.
	if b.proj != nil {
		gs := b.projBN.Backward(g)
		gs = b.proj.Backward(gs)
		dx.AddInPlace(gs)
	} else {
		dx.AddInPlace(g)
	}
	return dx
}

func (b *basicBlock) Params() []*nn.Param {
	ps := append(b.conv1.Params(), b.bn1.Params()...)
	ps = append(ps, b.conv2.Params()...)
	ps = append(ps, b.bn2.Params()...)
	if b.proj != nil {
		ps = append(ps, b.proj.Params()...)
		ps = append(ps, b.projBN.Params()...)
	}
	return ps
}

// countMACs implements the stats walker interface for residual blocks.
func (b *basicBlock) countMACs(spatial int) (int64, int) {
	macs, sz := convMACs(b.conv1, spatial)
	m2, sz2 := convMACs(b.conv2, sz)
	macs += m2
	if b.proj != nil {
		mp, _ := convMACs(b.proj, spatial)
		macs += mp
	}
	return macs, sz2
}

func buildResNet(rng *rand.Rand, cfg Config, spec Spec, widths []int) *Model {
	m := &Model{Cfg: cfg, Widths: append([]int(nil), widths...)}
	w1 := widths[0]
	m.Layers = append(m.Layers,
		nn.NewConv2D(rng, "stem.conv", cfg.InChannels, w1, 3, 1, 1, false),
		nn.NewBatchNorm2D("stem.bn", w1),
		nn.NewReLU(),
	)
	spatial := cfg.InputSize
	in := w1
	for stage := 0; stage < 4; stage++ {
		out := widths[stage]
		fullIn, fullOut := 0, spec.FullWidths[stage]
		if stage == 0 {
			fullIn = spec.FullWidths[0]
		} else {
			fullIn = spec.FullWidths[stage-1]
		}
		stride := 1
		if stage > 0 {
			stride = 2
		}
		hasProj := stride != 1 || fullIn != fullOut
		m.Layers = append(m.Layers,
			newBasicBlock(rng, fmt.Sprintf("stage%d.block1", stage+1), in, out, stride, hasProj),
			newBasicBlock(rng, fmt.Sprintf("stage%d.block2", stage+1), out, out, 1, false),
		)
		if stride == 2 {
			spatial = tensor.ConvOutSize(spatial, 3, 2, 1)
		}
		in = out
		m.Exits = append(m.Exits, ExitPoint{LayerIdx: len(m.Layers) - 1, Channels: out, Spatial: spatial})
	}
	m.Layers = append(m.Layers,
		nn.NewGlobalAvgPool2D(),
		nn.NewFlatten(),
		nn.NewLinear(rng, "classifier.fc", in, cfg.NumClasses, true),
	)
	return m
}
