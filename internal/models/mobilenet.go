package models

import (
	"fmt"
	"math/rand"

	"adaptivefl/internal/nn"
	"adaptivefl/internal/tensor"
)

// mobilenetGroup describes a run of inverted-residual blocks that share an
// output channel count (MobileNetV2's bottleneck table rows).
type mobilenetGroup struct {
	out    int // full output channels
	blocks int
	stride int // stride of the first block
	expand int // expansion factor t
}

// mobilenetGroups is the MobileNetV2 bottleneck configuration adapted to
// 32×32 inputs (the first two strides are 1, as in common CIFAR ports).
var mobilenetGroups = []mobilenetGroup{
	{out: 16, blocks: 1, stride: 1, expand: 1},
	{out: 24, blocks: 2, stride: 1, expand: 6},
	{out: 32, blocks: 3, stride: 2, expand: 6},
	{out: 64, blocks: 4, stride: 2, expand: 6},
	{out: 96, blocks: 3, stride: 1, expand: 6},
	{out: 160, blocks: 3, stride: 2, expand: 6},
	{out: 320, blocks: 1, stride: 1, expand: 6},
}

const (
	mobilenetStem     = 32
	mobilenetLastConv = 1280
)

// mobilenetSpec exposes 9 width units: stem, the 7 block groups, and the
// final 1×1 conv. Residual connections only occur inside a group, so
// pruning boundaries between groups keep every submodel a prefix slice.
// I ∈ {3,5,7} with τ = 3.
func mobilenetSpec(cfg Config) Spec {
	full := make([]int, 0, 9)
	full = append(full, scaleWidth(mobilenetStem, cfg.WidthScale))
	for _, g := range mobilenetGroups {
		full = append(full, scaleWidth(g.out, cfg.WidthScale))
	}
	full = append(full, scaleWidth(mobilenetLastConv, cfg.WidthScale))
	return Spec{FullWidths: full, Tau: 3, IChoices: []int{3, 5, 7}}
}

// invertedResidual is MobileNetV2's block: 1×1 expansion (skipped when
// t == 1), 3×3 depthwise, 1×1 linear projection, with a residual add when
// stride is 1 and input and output widths agree (decided structurally, so
// full and pruned models have identical topology).
type invertedResidual struct {
	expand   *nn.Conv2D // nil when t == 1
	expandBN *nn.BatchNorm2D
	expandRL *nn.ReLU
	dw       *nn.DepthwiseConv2D
	dwBN     *nn.BatchNorm2D
	dwRL     *nn.ReLU
	project  *nn.Conv2D
	projBN   *nn.BatchNorm2D
	residual bool
}

func newInvertedResidual(rng *rand.Rand, name string, in, out, stride, expand int, residual bool) *invertedResidual {
	hidden := in * expand
	b := &invertedResidual{residual: residual}
	if expand != 1 {
		b.expand = nn.NewConv2D(rng, name+".expand", in, hidden, 1, 1, 0, false)
		b.expandBN = nn.NewBatchNorm2D(name+".expandbn", hidden)
		b.expandRL = nn.NewReLU6()
	}
	b.dw = nn.NewDepthwiseConv2D(rng, name+".dw", hidden, 3, stride, 1, false)
	b.dwBN = nn.NewBatchNorm2D(name+".dwbn", hidden)
	b.dwRL = nn.NewReLU6()
	b.project = nn.NewConv2D(rng, name+".project", hidden, out, 1, 1, 0, false)
	b.projBN = nn.NewBatchNorm2D(name+".projbn", out)
	return b
}

func (b *invertedResidual) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	y := x
	if b.expand != nil {
		y = b.expand.Forward(y, train)
		y = b.expandBN.Forward(y, train)
		y = b.expandRL.Forward(y, train)
	}
	y = b.dw.Forward(y, train)
	y = b.dwBN.Forward(y, train)
	y = b.dwRL.Forward(y, train)
	y = b.project.Forward(y, train)
	y = b.projBN.Forward(y, train)
	if b.residual {
		y.AddInPlace(x)
	}
	return y
}

func (b *invertedResidual) Backward(grad *tensor.Tensor) *tensor.Tensor {
	g := b.projBN.Backward(grad)
	g = b.project.Backward(g)
	g = b.dwRL.Backward(g)
	g = b.dwBN.Backward(g)
	g = b.dw.Backward(g)
	if b.expand != nil {
		g = b.expandRL.Backward(g)
		g = b.expandBN.Backward(g)
		g = b.expand.Backward(g)
	}
	if b.residual {
		g = g.Clone()
		g.AddInPlace(grad)
	}
	return g
}

func (b *invertedResidual) Params() []*nn.Param {
	var ps []*nn.Param
	if b.expand != nil {
		ps = append(ps, b.expand.Params()...)
		ps = append(ps, b.expandBN.Params()...)
	}
	ps = append(ps, b.dw.Params()...)
	ps = append(ps, b.dwBN.Params()...)
	ps = append(ps, b.project.Params()...)
	ps = append(ps, b.projBN.Params()...)
	return ps
}

// countMACs implements the stats walker interface.
func (b *invertedResidual) countMACs(spatial int) (int64, int) {
	var macs int64
	sz := spatial
	if b.expand != nil {
		m, s := convMACs(b.expand, sz)
		macs, sz = macs+m, s
	}
	mdw, sz2 := depthwiseMACs(b.dw, sz)
	macs += mdw
	mp, sz3 := convMACs(b.project, sz2)
	macs += mp
	return macs, sz3
}

func buildMobileNet(rng *rand.Rand, cfg Config, spec Spec, widths []int) *Model {
	m := &Model{Cfg: cfg, Widths: append([]int(nil), widths...)}
	stemW := widths[0]
	m.Layers = append(m.Layers,
		nn.NewConv2D(rng, "stem.conv", cfg.InChannels, stemW, 3, 1, 1, false),
		nn.NewBatchNorm2D("stem.bn", stemW),
		nn.NewReLU6(),
	)
	spatial := cfg.InputSize
	in := stemW
	for gi, g := range mobilenetGroups {
		out := widths[gi+1]
		for bi := 0; bi < g.blocks; bi++ {
			stride := 1
			if bi == 0 {
				stride = g.stride
			}
			// Residual when stride 1 and in==out, which with group-tied
			// widths holds exactly for non-first blocks of a group.
			residual := stride == 1 && bi > 0
			name := fmt.Sprintf("group%d.block%d", gi+1, bi+1)
			m.Layers = append(m.Layers, newInvertedResidual(rng, name, in, out, stride, g.expand, residual))
			if stride == 2 {
				spatial = tensor.ConvOutSize(spatial, 3, 2, 1)
			}
			in = out
		}
		m.Exits = append(m.Exits, ExitPoint{LayerIdx: len(m.Layers) - 1, Channels: in, Spatial: spatial})
	}
	lastW := widths[8]
	m.Layers = append(m.Layers,
		nn.NewConv2D(rng, "head.conv", in, lastW, 1, 1, 0, false),
		nn.NewBatchNorm2D("head.bn", lastW),
		nn.NewReLU6(),
		nn.NewGlobalAvgPool2D(),
		nn.NewFlatten(),
		nn.NewLinear(rng, "classifier.fc", lastW, cfg.NumClasses, true),
	)
	return m
}
