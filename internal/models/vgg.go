package models

import (
	"fmt"
	"math/rand"

	"adaptivefl/internal/nn"
)

// vggConvWidths are the 13 convolution widths of VGG16; 'M' positions in
// the classic configuration are encoded by vggPoolAfter below.
var vggConvWidths = []int{64, 64, 128, 128, 256, 256, 256, 512, 512, 512, 512, 512, 512}

// vggPoolAfter marks the (0-based) conv indices followed by 2×2 max-pool.
var vggPoolAfter = map[int]bool{1: true, 3: true, 6: true, 9: true, 12: true}

// vggFCWidths are the two hidden classifier widths (the CIFAR-style VGG16
// with a 4096-4096 head that matches Table 1's 33.65M parameters).
var vggFCWidths = []int{4096, 4096}

// vggSpec exposes 15 width units: 13 convs + 2 hidden FC layers.
// Table 1 uses I ∈ {4,6,8} with τ = 4.
func vggSpec(cfg Config) Spec {
	full := make([]int, 0, 15)
	for _, w := range vggConvWidths {
		full = append(full, scaleWidth(w, cfg.WidthScale))
	}
	for _, w := range vggFCWidths {
		full = append(full, scaleWidth(w, cfg.WidthScale))
	}
	return Spec{FullWidths: full, Tau: 4, IChoices: []int{4, 6, 8}}
}

func buildVGG(rng *rand.Rand, cfg Config, spec Spec, widths []int) *Model {
	m := &Model{Cfg: cfg, Widths: append([]int(nil), widths...)}
	in := cfg.InChannels
	spatial := cfg.InputSize
	for i := 0; i < 13; i++ {
		out := widths[i]
		name := fmt.Sprintf("features.conv%d", i+1)
		m.Layers = append(m.Layers,
			nn.NewConv2D(rng, name, in, out, 3, 1, 1, false),
			nn.NewBatchNorm2D(fmt.Sprintf("features.bn%d", i+1), out),
			nn.NewReLU(),
		)
		in = out
		if vggPoolAfter[i] {
			m.Layers = append(m.Layers, nn.NewMaxPool2D(2, 2))
			spatial /= 2
			m.Exits = append(m.Exits, ExitPoint{LayerIdx: len(m.Layers) - 1, Channels: out, Spatial: spatial})
		}
	}
	m.Layers = append(m.Layers, nn.NewFlatten())
	features := in * spatial * spatial
	fc1, fc2 := widths[13], widths[14]
	m.Layers = append(m.Layers,
		nn.NewLinear(rng, "classifier.fc1", features, fc1, true),
		nn.NewReLU(),
		nn.NewLinear(rng, "classifier.fc2", fc1, fc2, true),
		nn.NewReLU(),
		nn.NewLinear(rng, "classifier.fc3", fc2, cfg.NumClasses, true),
	)
	return m
}
