// Dynamic-resources example: what happens inside a round when device
// capacity fluctuates. Shows (a) the on-device resource-aware pruning —
// which pool member a device keeps as its available capacity changes —
// and (b) how the RL selector cuts communication waste against random
// selection in an uncertain environment.
package main

import (
	"fmt"
	"log"

	"adaptivefl/internal/baselines"
	"adaptivefl/internal/exp"
	"adaptivefl/internal/models"
	"adaptivefl/internal/prune"
)

func main() {
	// Part (a): the device-side pruning decision table for full VGG16.
	mcfg := models.Config{Arch: models.VGG16, NumClasses: 10}
	pool, err := prune.BuildPool(mcfg, prune.Config{P: 3})
	if err != nil {
		log.Fatal(err)
	}
	l1 := pool.Largest()
	fmt.Println("on-device pruning of a received L1 (33.6M params) as capacity varies:")
	fmt.Println("capacity(M params)  kept model")
	for _, capM := range []float64{34, 20, 16.5, 10, 7, 6, 5} {
		got, ok := pool.LargestFit(l1, int64(capM*1e6))
		name := "training fails"
		if ok {
			name = fmt.Sprintf("%s (%4.1fM)", got.Name(), float64(got.Size)/1e6)
		}
		fmt.Printf("%17.1f   %s\n", capM, name)
	}

	// Part (b): waste under random vs RL-CS selection with jittering
	// capacities (quick scale, CIFAR-10-like, ResNet18).
	sc := exp.QuickScale()
	sc.Rounds = 12
	sc.EvalEvery = 12
	fmt.Println("\ncommunication waste under capacity jitter (cifar10/resnet18):")
	for _, alg := range []string{"AdaptiveFL+Greedy", "AdaptiveFL+Random", "AdaptiveFL+CS"} {
		fed, err := exp.BuildFederation(models.ResNet18, "cifar10", exp.IID, exp.DefaultProportions, sc)
		if err != nil {
			log.Fatal(err)
		}
		r, err := exp.NewRunner(alg, fed, sc)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := exp.RunCurve(r, fed, sc); err != nil {
			log.Fatal(err)
		}
		a := r.(*baselines.Adaptive)
		fmt.Printf("  %-18s waste = %5.1f%%\n", alg, a.Waste()*100)
	}
}
