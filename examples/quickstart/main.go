// Quickstart: the smallest complete AdaptiveFL run, assembled from the
// core packages directly — synthetic CIFAR-10-like data, a reduced-width
// VGG16, a 4:3:3 weak/medium/strong device population, and a few federated
// rounds with per-level submodel evaluation.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"adaptivefl/internal/core"
	"adaptivefl/internal/data"
	"adaptivefl/internal/eval"
	"adaptivefl/internal/models"
	"adaptivefl/internal/prune"
)

func main() {
	const (
		numClients = 20
		perRound   = 5
		rounds     = 12
	)

	// 1. The global model: VGG16 at 1/8 width so a laptop CPU can train it.
	mcfg := models.Config{Arch: models.VGG16, NumClasses: 10, WidthScale: 0.125, Seed: 1}

	// 2. The model pool R = {S3..S1, M3..M1, L1} (paper Table 1, p=3).
	pool, err := prune.BuildPool(mcfg, prune.Config{P: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("model pool:")
	for _, m := range pool.Members {
		fmt.Printf("  %-3s r_w=%.2f I=%-2d %8d params\n", m.Name(), m.Rw, m.I, m.Size)
	}

	// 3. Synthetic CIFAR-10-like data, IID across 20 clients.
	dcfg := data.CIFAR10Like(numClients*30, 300, 7)
	train, test := data.Generate(dcfg)
	rng := rand.New(rand.NewSource(7))
	parts := data.PartitionIID(rng, train.Len(), numClients)

	// 4. Devices: 4:3:3 weak/medium/strong with 10% capacity jitter.
	devices := core.NewPopulation(rng, numClients, [3]float64{4, 3, 3}, pool, core.DefaultDeviceModel())
	clients := make([]*core.Client, numClients)
	for i := range clients {
		clients[i] = &core.Client{ID: i, Data: train.Subset(parts[i]), Device: devices[i]}
	}

	// 5. The AdaptiveFL server (Algorithm 1).
	srv, err := core.NewServer(core.Config{
		Model:           mcfg,
		Pool:            prune.Config{P: 3},
		ClientsPerRound: perRound,
		Train:           core.TrainConfig{LocalEpochs: 1, BatchSize: 10, LR: 0.1, Momentum: 0.5},
		Seed:            7,
	}, clients)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nround  full%   S1%    M1%    L1%")
	for r := 1; r <= rounds; r++ {
		if err := srv.Round(); err != nil {
			log.Fatal(err)
		}
		if r%3 != 0 {
			continue
		}
		full, err := srv.GlobalModel()
		if err != nil {
			log.Fatal(err)
		}
		accs := map[string]float64{"full": eval.Accuracy(full, test, 50)}
		for _, name := range []string{"S1", "M1", "L1"} {
			m, err := srv.SubmodelByName(name)
			if err != nil {
				log.Fatal(err)
			}
			accs[name] = eval.Accuracy(m, test, 50)
		}
		fmt.Printf("%5d  %5.1f  %5.1f  %5.1f  %5.1f\n",
			r, accs["full"]*100, accs["S1"]*100, accs["M1"]*100, accs["L1"]*100)
	}
	fmt.Printf("\ncommunication waste: %.1f%%\n", core.CommWasteRate(srv.Stats())*100)
}
