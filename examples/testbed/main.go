// Test-bed example: the paper's real-hardware experiment (Figure 6 /
// Table 5) on the simulated 17-device AIoT platform — 4 Raspberry Pi 4B,
// 10 Jetson Nano, 3 Jetson Xavier AGX — training MobileNetV2 on
// Widar-like gesture data, with accuracy reported against simulated
// wall-clock time.
package main

import (
	"fmt"
	"log"

	"adaptivefl/internal/baselines"
	"adaptivefl/internal/core"
	"adaptivefl/internal/exp"
	"adaptivefl/internal/models"
	"adaptivefl/internal/testbed"
)

func main() {
	sc := exp.QuickScale()
	sc.Clients = 17
	sc.K = 10
	sc.Rounds = 12
	sc.EvalEvery = 3
	sc.Parallelism = 10
	// Ship models over the int8-quantized wire codec: the round ledger
	// then carries real encoded byte counts, and the simulated transfer
	// times below reflect them (Pi-class uplinks are the bottleneck).
	sc.Codec = "q8"

	platform := testbed.Table5Platform()
	fmt.Println("simulated platform (paper Table 5):")
	for _, sp := range platform {
		fmt.Printf("  %-18s x%-2d  %v-class\n", sp.Name, sp.Count, sp.Class)
	}

	fed, err := exp.BuildFederation(models.MobileNetV2, "widar", exp.Natural, [3]float64{4, 10, 3}, sc)
	if err != nil {
		log.Fatal(err)
	}
	r, err := exp.NewRunner("AdaptiveFL", fed, sc)
	if err != nil {
		log.Fatal(err)
	}
	sim, err := testbed.NewSim(platform)
	if err != nil {
		log.Fatal(err)
	}
	a := r.(*baselines.Adaptive)
	classOf := func(id int) core.DeviceClass { return fed.Clients[id].Device.Class }
	samplesOf := func(id int) int { return fed.Clients[id].Data.Len() }

	fmt.Println("\nround  sim-time(s)  full-acc(%)")
	for round := 1; round <= sc.Rounds; round++ {
		if err := r.Round(); err != nil {
			log.Fatal(err)
		}
		stats := a.Srv.Stats()
		sim.Advance(sim.RoundTime(stats[len(stats)-1], classOf, samplesOf, sc.LocalEpochs))
		if round%sc.EvalEvery == 0 {
			acc, err := r.Evaluate(fed.Test, 64)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%5d  %11.1f  %10.2f\n", round, sim.Clock(), acc["full"]*100)
		}
	}
	fmt.Printf("\ncommunication waste on the test bed: %.1f%%\n", a.Waste()*100)
	sent, back := core.TotalWireBytes(a.Srv.Stats())
	fmt.Printf("wire traffic (codec=%s): %.2f MB down, %.2f MB up\n",
		sc.Codec, float64(sent)/1e6, float64(back)/1e6)
}
