// Heterogeneous-devices example: how the device mix changes what each
// algorithm can learn. Replays a miniature version of the paper's Table 3
// sweep (weak-heavy 8:1:1 vs strong-heavy 1:1:8) for HeteroFL and
// AdaptiveFL, showing that AdaptiveFL degrades much more gracefully when
// most devices are weak.
package main

import (
	"fmt"
	"log"

	"adaptivefl/internal/baselines"
	"adaptivefl/internal/exp"
	"adaptivefl/internal/models"
)

func main() {
	sc := exp.QuickScale()
	sc.Rounds = 12
	sc.EvalEvery = 12

	mixes := []struct {
		name  string
		props [3]float64
	}{
		{"8:1:1 (weak-heavy)", [3]float64{8, 1, 1}},
		{"4:3:3 (paper default)", [3]float64{4, 3, 3}},
		{"1:1:8 (strong-heavy)", [3]float64{1, 1, 8}},
	}

	fmt.Println("best avg accuracy (%) by device mix — cifar10/vgg16/iid")
	fmt.Printf("%-22s  %-10s  %-10s\n", "mix (weak:med:strong)", "HeteroFL", "AdaptiveFL")
	for _, mix := range mixes {
		row := fmt.Sprintf("%-22s", mix.name)
		for _, alg := range []string{"HeteroFL", "AdaptiveFL"} {
			fed, err := exp.BuildFederation(models.VGG16, "cifar10", exp.IID, mix.props, sc)
			if err != nil {
				log.Fatal(err)
			}
			r, err := exp.NewRunner(alg, fed, sc)
			if err != nil {
				log.Fatal(err)
			}
			curve, err := exp.RunCurve(r, fed, sc)
			if err != nil {
				log.Fatal(err)
			}
			best := exp.BestOf(curve, "avg")
			if best == 0 {
				best = exp.BestOf(curve, "full")
			}
			row += fmt.Sprintf("  %-10.2f", best*100)
			_ = baselines.AvgOf
		}
		fmt.Println(row)
	}
	fmt.Println("\nAdaptiveFL's fine-grained pool keeps weak devices contributing")
	fmt.Println("full-width shallow layers, so the weak-heavy mix hurts it least.")
}
